package olive_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	olive "github.com/olive-vne/olive"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow through
// the facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := olive.BuildTopology(olive.TopoCittaStudi, 1)
	if g.NumNodes() != 30 || g.NumLinks() != 35 {
		t.Fatalf("topology size %d/%d, want 30/35", g.NumNodes(), g.NumLinks())
	}
	rng := rand.New(rand.NewPCG(7, 7))
	apps := olive.DefaultAppMix(rng)
	if len(apps) != 4 {
		t.Fatalf("app mix size %d, want 4", len(apps))
	}

	wp := olive.DefaultWorkload().WithUtilization(1.0)
	wp.Slots = 150
	trace, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	hist, online, err := trace.Split(110)
	if err != nil {
		t.Fatal(err)
	}

	popts := olive.DefaultPlanOptions()
	popts.BootstrapB = 20
	p, err := olive.BuildPlan(g, apps, hist, popts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("empty plan")
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}

	eng, err := olive.NewEngine(g, apps, olive.EngineOptions{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Algorithm() != olive.OLIVE {
		t.Fatalf("engine algorithm %v, want OLIVE", eng.Algorithm())
	}
	var accepted, total int
	for ts, slot := range online.PerSlot() {
		eng.StartSlot(ts)
		for _, r := range slot {
			out, err := eng.Process(r)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if out.Accepted {
				accepted++
			}
		}
	}
	if total == 0 || accepted == 0 {
		t.Fatalf("accepted %d of %d requests", accepted, total)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExactAndCollocatedEmbedding(t *testing.T) {
	g := olive.BuildTopology(olive.TopoCittaStudi, 2)
	rng := rand.New(rand.NewPCG(9, 9))
	app := olive.GenerateApp(olive.KindChain, "c", olive.DefaultAppParams(), rng)
	ingress := g.EdgeNodes()[0]

	exact, exactCost, ok := olive.MinCostEmbedding(g, app, ingress)
	if !ok {
		t.Fatal("no exact embedding")
	}
	colo, coloCost, ok := olive.BestCollocatedEmbedding(g, app, ingress, nil, 1)
	if !ok {
		t.Fatal("no collocated embedding")
	}
	if exactCost > coloCost+1e-9 {
		t.Fatalf("exact cost %g worse than collocated %g", exactCost, coloCost)
	}
	if exact.App != app || colo.App != app {
		t.Fatal("embeddings reference wrong app")
	}
}

func TestPublicAPISlotOff(t *testing.T) {
	g := olive.BuildTopology(olive.TopoCittaStudi, 3)
	rng := rand.New(rand.NewPCG(11, 11))
	apps := olive.DefaultAppMix(rng)
	so, err := olive.NewSlotOff(g, apps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := so.Step(0, []olive.Request{
		{ID: 0, App: 0, Ingress: g.EdgeNodes()[0], Demand: 5, Arrive: 0, Duration: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AcceptedNew) != 1 {
		t.Fatalf("SLOTOFF rejected a trivial request: %+v", res)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	cfg := olive.QuickSimConfig(olive.TopoCittaStudi, 1.0, 4)
	cfg.HistSlots, cfg.OnlineSlots = 100, 30
	cfg.MeasureFrom, cfg.MeasureTo = 5, 25
	cfg.Algorithms = []olive.Algorithm{olive.OLIVE, olive.QUICKG}
	rr, err := olive.RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Results[olive.OLIVE] == nil || rr.Results[olive.QUICKG] == nil {
		t.Fatal("missing results")
	}
}

func TestPublicAPIGPUVariant(t *testing.T) {
	g := olive.BuildTopology(olive.TopoIris, 5)
	v := olive.MakeGPUVariant(g, 4, 5)
	var gpus int
	for _, n := range v.Nodes() {
		if n.GPU {
			gpus++
		}
	}
	if gpus == 0 {
		t.Fatal("no GPU datacenters in variant")
	}
	if _, ok := olive.FindNode(g, "Franklin"); !ok {
		t.Fatal("Franklin missing from Iris")
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	g := olive.BuildTopology(olive.TopoCittaStudi, 8)
	rng := rand.New(rand.NewPCG(8, 8))
	apps := olive.DefaultAppMix(rng)
	wp := olive.DefaultWorkload().WithUtilization(1.0)
	wp.Slots = 100
	wp.LambdaPerNode = 2
	trace, err := olive.GenerateMMPP(g, wp, rng)
	if err != nil {
		t.Fatal(err)
	}
	var tbuf bytes.Buffer
	if err := olive.SaveTrace(&tbuf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := olive.LoadTrace(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(trace.Requests) {
		t.Fatal("trace round trip lost requests")
	}

	popts := olive.DefaultPlanOptions()
	popts.BootstrapB = 20
	p, err := olive.BuildPlan(g, apps, trace, popts, rng)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf bytes.Buffer
	if err := olive.SavePlan(&pbuf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := olive.LoadPlan(&pbuf, g, apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Classes) != len(p.Classes) {
		t.Fatal("plan round trip lost classes")
	}
	// A loaded plan drives an engine directly.
	eng, err := olive.NewEngine(g, apps, olive.EngineOptions{Plan: p2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Algorithm() != olive.OLIVE {
		t.Fatal("loaded plan did not activate OLIVE mode")
	}
}

func TestPublicAPIWindowedPlan(t *testing.T) {
	g := olive.BuildTopology(olive.TopoCittaStudi, 9)
	rng := rand.New(rand.NewPCG(9, 9))
	apps := olive.DefaultAppMix(rng)
	wp := olive.DefaultWorkload().WithUtilization(1.0)
	wp.Slots = 160
	wp.LambdaPerNode = 2
	cp := olive.DefaultCAIDAParams()
	cp.DiurnalPeriod = 80
	trace, err := olive.GenerateCAIDA(g, wp, cp, rng)
	if err != nil {
		t.Fatal(err)
	}
	popts := olive.DefaultPlanOptions()
	popts.BootstrapB = 20
	w, err := olive.BuildWindowedPlan(g, apps, trace, 80, 4, popts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.Windows() != 4 {
		t.Fatalf("windows = %d", w.Windows())
	}
	eng, err := olive.NewEngine(g, apps, olive.EngineOptions{Plan: w.At(0)})
	if err != nil {
		t.Fatal(err)
	}
	eng.StartSlot(0)
	eng.SwapPlan(w.At(25))
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIScenarios(t *testing.T) {
	names := olive.ScenarioNames()
	if len(names) < 13 {
		t.Fatalf("only %d registered scenarios: %v", len(names), names)
	}
	sp, ok := olive.LookupScenario("table2")
	if !ok {
		t.Fatal("table2 not registered")
	}
	tbls, err := olive.RunScenario(sp, olive.SmokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbls) != 1 || len(tbls[0].Rows) != 4 {
		t.Fatalf("table2 rendered wrong: %+v", tbls)
	}

	// Round-trip a custom spec through the public JSON surface.
	custom := &olive.Scenario{
		Name: "public-api-micro",
		Base: olive.ScenarioPatch{Topology: "cittastudi"},
		Reports: []olive.ScenarioReport{{
			Title:     "t",
			RowHeader: "cell",
			Columns:   []olive.ScenarioColumn{{Header: "OLIVE", Metric: "rejection", Algo: "OLIVE"}},
		}},
	}
	var buf bytes.Buffer
	if err := olive.SaveScenario(&buf, custom); err != nil {
		t.Fatal(err)
	}
	loaded, err := olive.LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != custom.Hash() {
		t.Fatal("public JSON round trip changed the spec hash")
	}
	if err := olive.RegisterScenario(loaded); err != nil {
		t.Fatal(err)
	}
	if err := olive.RegisterScenario(loaded); err == nil {
		t.Fatal("duplicate public registration accepted")
	}
}

// TestPublicAPIServer exercises the online serving surface: accept a
// request over HTTP, read stats, drain gracefully.
func TestPublicAPIServer(t *testing.T) {
	g := olive.BuildTopology(olive.TopoIris, 1)
	apps := olive.DefaultAppMix(rand.New(rand.NewPCG(7, 7)))
	s, err := olive.NewServer(g, apps, olive.ServerOptions{Shards: 2, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(olive.ServeEmbedRequest{App: 0, Ingress: 0, Demand: 1, Duration: 5})
	resp, err := http.Post(ts.URL+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out olive.ServeEmbedResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("embed = %d accepted=%v, want 200 accepted", resp.StatusCode, out.Accepted)
	}

	var st olive.ServerStats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests.Total != 1 || st.Requests.Accepted != 1 || st.Shards != 2 {
		t.Fatalf("stats = %+v, want 1 processed 1 accepted over 2 shards", st.Requests)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
