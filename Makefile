# Developer conveniences; CI runs the underlying commands directly
# (.github/workflows/ci.yml) so this file is never load-bearing.

BASELINE := testdata/bench_baseline.json

.PHONY: test race lint fuzz bench-report

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/serve/... ./internal/runner/... \
	    ./internal/substrate/... ./internal/lp/... \
	    ./internal/obs/... ./internal/scenario/... ./internal/plan/...

# Everything the CI lint + olivelint jobs run, in one target. staticcheck
# is optional locally (skipped with a note when not installed); olivelint
# runs both standalone and through the vet driver, matching CI.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	    echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go test ./internal/lint/...
	go run ./cmd/olivelint ./...
	@go build -o /tmp/olivelint ./cmd/olivelint && \
	    go vet -vettool=/tmp/olivelint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
	    staticcheck -checks "all,-ST1000,-ST1003,-ST1020,-ST1021,-ST1022" ./...; \
	else \
	    echo "lint: staticcheck not installed locally; skipped (CI runs it)" >&2; \
	fi

# Short local fuzz passes over the external-bytes parsers (same targets
# as the CI smoke step; raise FUZZTIME to grow the corpus).
FUZZTIME ?= 30s
fuzz:
	go test -run=NONE -fuzz='^FuzzLPLoad$$' -fuzztime=$(FUZZTIME) ./internal/lp
	go test -run=NONE -fuzz='^FuzzObsParseText$$' -fuzztime=$(FUZZTIME) ./internal/obs

# Emit a machine-readable perf snapshot (bench_report.json) of every
# benchmark the CI guard pins, run under the guard's exact conditions
# (GOMAXPROCS + per-bench benchtime from the baseline file). Rename the
# output to BENCH_<pr>.json and fill in before/after when a perf PR
# lands — see CONTRIBUTING.md "Benchmark baseline".
bench-report:
	@export GOMAXPROCS=$$(jq -r '.gomaxprocs // 1' $(BASELINE)); \
	n=$$(jq '.benchmarks | length' $(BASELINE)); \
	rows=""; \
	for i in $$(seq 0 $$((n - 1))); do \
	    name=$$(jq -r ".benchmarks[$$i].benchmark" $(BASELINE)); \
	    pkg=$$(jq -r ".benchmarks[$$i].package" $(BASELINE)); \
	    btime=$$(jq -r ".benchmarks[$$i].benchtime // \"1x\"" $(BASELINE)); \
	    echo "bench-report: $$name ($$pkg, -benchtime=$$btime)" >&2; \
	    out=$$(go test -run=NONE -bench="^$$name\$$" -benchtime="$$btime" -benchmem "$$pkg") || exit 1; \
	    row=$$(echo "$$out" | awk -v n="$$name" -v p="$$pkg" -v bt="$$btime" ' \
	        $$1 ~ ("^" n) { \
	            ns = allocs = bytes = "null"; \
	            for (k = 1; k < NF; k++) { \
	                if ($$(k+1) == "ns/op") ns = $$k; \
	                if ($$(k+1) == "allocs/op") allocs = $$k; \
	                if ($$(k+1) == "B/op") bytes = $$k; \
	            } \
	            printf "{\"benchmark\":\"%s\",\"package\":\"%s\",\"benchtime\":\"%s\",\"ns_per_op\":%s,\"allocs_per_op\":%s,\"bytes_per_op\":%s}", n, p, bt, ns, allocs, bytes; \
	        }'); \
	    [ -n "$$row" ] || { echo "bench-report: no output row for $$name" >&2; exit 1; }; \
	    rows="$$rows$${rows:+,}$$row"; \
	done; \
	printf '%s' "[$$rows]" | jq "{date: \"$$(date -u +%Y-%m-%d)\", go: \"$$(go env GOVERSION) $$(go env GOOS)/$$(go env GOARCH)\", gomaxprocs: $$GOMAXPROCS, benchmarks: .}" \
	    > bench_report.json; \
	echo "bench-report: wrote bench_report.json" >&2; \
	jq . bench_report.json
