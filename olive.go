// Package olive is the public API of this reproduction of "Plan-Based
// Scalable Online Virtual Network Embedding" (ICDCS 2025): the OLIVE
// plan-based online VNE algorithm, the PLAN-VNE offline planner, the
// QUICKG/FULLG/SLOTOFF baselines, the evaluation substrates (topologies,
// applications, workloads), and the simulation harness that regenerates
// every figure of the paper.
//
// The heavy machinery lives in internal packages; this package re-exports
// the stable surface via type aliases and thin wrappers, so downstream
// users never import internal paths.
//
// # Quick start
//
//	g := olive.BuildTopology(olive.TopoIris, 1)
//	rng := rand.New(rand.NewPCG(7, 7))
//	apps := olive.DefaultAppMix(rng)
//
//	// Generate a workload, split into history + online phase.
//	wp := olive.DefaultWorkload().WithUtilization(1.0)
//	trace, _ := olive.GenerateMMPP(g, wp, rng)
//	hist, online, _ := trace.Split(5400)
//
//	// Offline: build the embedding plan from the history.
//	p, _ := olive.BuildPlan(g, apps, hist, olive.DefaultPlanOptions(), rng)
//
//	// Online: run OLIVE over the live requests.
//	eng, _ := olive.NewEngine(g, apps, olive.EngineOptions{Plan: p})
//	for t, slot := range online.PerSlot() {
//		eng.StartSlot(t)
//		for _, r := range slot {
//			out, _ := eng.Process(r)
//			_ = out.Accepted
//		}
//	}
//
// # Parallel experiments
//
// Repeated runs and whole sweeps fan out across a deterministic parallel
// runner: seeds are derived from each cell's identity (never from
// execution order), aggregation order is canonical, and with an
// ArtifactStore attached every completed cell is persisted as versioned
// JSON so interrupted sweeps resume instead of recomputing. RunSimRepeated
// is parallel out of the box; RunSweep exposes the full machinery:
//
//	store, _ := olive.OpenArtifactStore("results")
//	cells := []olive.SweepCell{{Config: cfg, Reps: 30}}
//	res, _ := olive.RunSweep(cells, olive.RunnerOptions{Store: store, Resume: true})
//
// # Declarative scenarios
//
// Experiments are data: a Scenario describes a grid of simulation cells
// (named axes over the configuration), the reports to render, and the
// repetition policy. Every figure of the paper is a registered Scenario
// (ScenarioNames lists them); arbitrary user scenarios load from JSON and
// run through the same runner machinery:
//
//	sp, _ := olive.LoadScenario(specFile)
//	tables, _ := olive.RunScenario(sp, olive.SmokeScale())
//	for _, t := range tables {
//		t.Fprint(os.Stdout)
//	}
package olive

import (
	"io"
	"math/rand/v2"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/embedder"
	"github.com/olive-vne/olive/internal/graph"
	"github.com/olive-vne/olive/internal/persist"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/runner"
	"github.com/olive-vne/olive/internal/scenario"
	"github.com/olive-vne/olive/internal/serve"
	"github.com/olive-vne/olive/internal/sim"
	"github.com/olive-vne/olive/internal/substrate"
	"github.com/olive-vne/olive/internal/topo"
	"github.com/olive-vne/olive/internal/vnet"
	"github.com/olive-vne/olive/internal/workload"
)

// ---- Substrate network ----

type (
	// Substrate is the physical network: datacenters and links with
	// capacities and per-CU costs.
	Substrate = graph.Graph
	// Node is a substrate datacenter.
	Node = graph.Node
	// Link is a substrate link.
	Link = graph.Link
	// NodeID identifies a substrate node.
	NodeID = graph.NodeID
	// LinkID identifies a substrate link.
	LinkID = graph.LinkID
	// ElementID indexes a substrate element (node or link) in the flat
	// element space used by capacity/residual vectors.
	ElementID = graph.ElementID
	// Tier classifies nodes as edge, transport or core.
	Tier = graph.Tier
	// Path is a substrate path.
	Path = graph.Path
)

// Node tiers.
const (
	TierEdge      = graph.TierEdge
	TierTransport = graph.TierTransport
	TierCore      = graph.TierCore
)

// NewSubstrate returns an empty substrate graph for manual construction.
func NewSubstrate() *Substrate { return graph.New() }

// ---- Topologies (Table II) ----

// TopologyName identifies one of the four evaluation topologies.
type TopologyName = topo.Name

// The four evaluation topologies.
const (
	TopoIris       = topo.Iris
	TopoCittaStudi = topo.CittaStudi
	Topo5GEN       = topo.FiveGEN
	Topo100N150E   = topo.Random100
)

// AllTopologies lists the four evaluation topologies.
func AllTopologies() []TopologyName { return topo.All() }

// BuildTopology deterministically constructs a named evaluation topology.
func BuildTopology(name TopologyName, seed uint64) *Substrate {
	return topo.MustBuild(name, seed)
}

// MakeGPUVariant adapts a substrate for the GPU scenario of Fig. 10.
func MakeGPUVariant(g *Substrate, gpuEdgeNodes int, seed uint64) *Substrate {
	return topo.MakeGPUVariant(g, gpuEdgeNodes, seed)
}

// FindNode returns the ID of the node with the given name.
func FindNode(g *Substrate, name string) (NodeID, bool) { return topo.FindNode(g, name) }

// ---- Applications (virtual networks) ----

type (
	// App is a virtual network: a rooted tree of VNFs.
	App = vnet.App
	// VNF is a virtual network function.
	VNF = vnet.VNF
	// VLink is a virtual link.
	VLink = vnet.VLink
	// AppKind names an application family (chain/tree/accelerator/GPU).
	AppKind = vnet.Kind
	// AppParams configures random application generation.
	AppParams = vnet.Params
	// Embedding is an integral mapping of an App onto a Substrate.
	Embedding = vnet.Embedding
)

// Application families.
const (
	KindChain       = vnet.KindChain
	KindTree        = vnet.KindTree
	KindAccelerator = vnet.KindAccelerator
	KindGPU         = vnet.KindGPU
)

// DefaultAppParams returns the Table III application parameters.
func DefaultAppParams() AppParams { return vnet.DefaultParams() }

// DefaultAppMix draws the paper's standard application set: two chains,
// one tree, one accelerator.
func DefaultAppMix(rng *rand.Rand) []*App { return vnet.DefaultMix(vnet.DefaultParams(), rng) }

// GenerateApp draws one application of the given kind.
func GenerateApp(kind AppKind, name string, p AppParams, rng *rand.Rand) *App {
	return vnet.Generate(kind, name, p, rng)
}

// NewEmbedding builds (and validates) an integral embedding.
func NewEmbedding(g *Substrate, app *App, nodeMap []NodeID, pathMap []Path) (*Embedding, error) {
	return vnet.NewEmbedding(g, app, nodeMap, pathMap)
}

// ---- Workloads (Table III traces) ----

type (
	// Request is one online embedding request.
	Request = workload.Request
	// Trace is a time-ordered request sequence.
	Trace = workload.Trace
	// WorkloadParams configures trace generation.
	WorkloadParams = workload.Params
	// CAIDAParams configures the CAIDA-like trace substitute.
	CAIDAParams = workload.CAIDAParams
)

// DefaultWorkload returns the Table III workload parameters.
func DefaultWorkload() WorkloadParams { return workload.DefaultParams() }

// GenerateMMPP produces the bursty MMPP trace of §IV-A.
func GenerateMMPP(g *Substrate, p WorkloadParams, rng *rand.Rand) (*Trace, error) {
	return workload.GenerateMMPP(g, p, rng)
}

// GenerateCAIDA produces the CAIDA-like heavy-tailed trace substitute.
func GenerateCAIDA(g *Substrate, p WorkloadParams, cp CAIDAParams, rng *rand.Rand) (*Trace, error) {
	return workload.GenerateCAIDA(g, p, cp, rng)
}

// DefaultCAIDAParams returns the substitute-trace parameters.
func DefaultCAIDAParams() CAIDAParams { return workload.DefaultCAIDAParams() }

// ---- Planning (PLAN-VNE, §III-A/B) ----

type (
	// Plan is a PLAN-VNE solution: per-class fractional shares over
	// integral embeddings plus rejection fractions.
	Plan = plan.Plan
	// PlanClass is one aggregate request class (app, ingress, demand).
	PlanClass = plan.Class
	// ClassPlan is the plan of one class.
	ClassPlan = plan.ClassPlan
	// PlanShare is one fractional share of a class plan.
	PlanShare = plan.Share
	// PlanOptions configures plan construction.
	PlanOptions = plan.Options
)

// DefaultPlanOptions returns the paper's plan parameters (P=10 quantiles,
// P̂80 aggregation, column generation to optimality).
func DefaultPlanOptions() PlanOptions { return plan.DefaultOptions() }

// AggregateHistory groups a request history into per-(app, ingress)
// classes with bootstrap-estimated expected demand (§III-A).
func AggregateHistory(hist *Trace, numApps int, alpha float64, bootstrapB int, rng *rand.Rand) ([]PlanClass, error) {
	return plan.Aggregate(hist, numApps, alpha, bootstrapB, rng)
}

// BuildPlan aggregates hist and solves PLAN-VNE.
func BuildPlan(g *Substrate, apps []*App, hist *Trace, opts PlanOptions, rng *rand.Rand) (*Plan, error) {
	return plan.BuildFromHistory(g, apps, hist, opts, rng)
}

// BuildPlanFromClasses solves PLAN-VNE over pre-computed classes.
func BuildPlanFromClasses(g *Substrate, apps []*App, classes []PlanClass, opts PlanOptions) (*Plan, error) {
	return plan.Build(g, apps, classes, opts)
}

// RejectionFactor returns the paper's conservative rejection penalty ψ for
// an application on a substrate.
func RejectionFactor(g *Substrate, app *App) float64 {
	return plan.DefaultRejectionFactor(g, app)
}

// ---- Online embedding (OLIVE, §III-C) ----

type (
	// Engine is the OLIVE online embedding engine (QUICKG/FULLG when
	// configured without a plan).
	Engine = core.Engine
	// EngineOptions configures an Engine.
	EngineOptions = core.Options
	// Outcome is the result of processing one request.
	Outcome = core.Outcome
	// Algorithm names one of the evaluated algorithms.
	Algorithm = core.Algorithm
	// SlotOff is the per-slot offline re-optimization baseline.
	SlotOff = core.SlotOff
)

// The evaluated algorithms.
const (
	OLIVE   = core.AlgoOLIVE
	QUICKG  = core.AlgoQuickG
	FULLG   = core.AlgoFullG
	SLOTOFF = core.AlgoSlotOff
)

// NewEngine builds an online embedding engine over a fresh substrate
// state.
func NewEngine(g *Substrate, apps []*App, opts EngineOptions) (*Engine, error) {
	return core.NewEngine(g, apps, opts)
}

// NewSlotOff builds the SLOTOFF baseline.
func NewSlotOff(g *Substrate, apps []*App) (*SlotOff, error) {
	return core.NewSlotOff(g, apps, core.SlotOffOptions())
}

// ---- Substrate state (the shared online hot path) ----

type (
	// SubstrateState owns the residual vector, per-element prices and
	// the lazy shortest-path cache one simulation cell's engines share.
	// See the package doc of internal/substrate for the cache
	// invalidation rules.
	SubstrateState = substrate.State
	// EmbedOracle answers min-cost embedding queries over one
	// SubstrateState, memoizing collocated candidates.
	EmbedOracle = embedder.Oracle
)

// NewSubstrateState returns a substrate state over g: residuals at full
// capacity, prices initialized to the element costs.
func NewSubstrateState(g *Substrate) *SubstrateState { return substrate.New(g) }

// NewEmbedOracle returns an embedding oracle viewing st. Oracle
// construction is free — shortest-path trees are computed lazily per
// source and cached in the state.
func NewEmbedOracle(st *SubstrateState) *EmbedOracle { return embedder.ForState(st) }

// NewEngineOn builds an online embedding engine over an existing
// substrate state (viewed through oracle), resetting its residuals but
// keeping its warm caches. Engines run back to back over one state share
// path trees and collocated candidates — the simulation harness does this
// per cell.
func NewEngineOn(oracle *EmbedOracle, apps []*App, opts EngineOptions) (*Engine, error) {
	return core.NewEngineOn(oracle, apps, opts)
}

// ---- Exact embedding (FULLG's oracle) ----

// MinCostEmbedding returns the cost-minimal integral embedding of app with
// its root pinned at ingress, ignoring capacities. ok is false when no
// placement satisfies the η exclusions.
func MinCostEmbedding(g *Substrate, app *App, ingress NodeID) (*Embedding, float64, bool) {
	return embedder.NewOracle(g, embedder.CostPrices(g)).MinCostEmbed(app, ingress)
}

// BestCollocatedEmbedding returns the cheapest collocated embedding that
// fits demand d within the residual capacities res (nil res skips the
// feasibility check).
func BestCollocatedEmbedding(g *Substrate, app *App, ingress NodeID, res []float64, d float64) (*Embedding, float64, bool) {
	return embedder.NewOracle(g, embedder.CostPrices(g)).BestCollocated(app, ingress, res, d)
}

// ---- Simulation & experiments (§IV) ----

type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one run.
	SimResult = sim.RunResult
	// AlgoResult carries one algorithm's metrics.
	AlgoResult = sim.AlgoResult
	// RepeatedResult aggregates repeated runs with 95% CIs.
	RepeatedResult = sim.RepeatedResult
	// ExperimentScale trades fidelity for runtime in the experiment
	// generators.
	ExperimentScale = sim.Scale
	// ResultTable is a printable experiment result.
	ResultTable = sim.Table
)

// Trace kinds for SimConfig.
const (
	TraceMMPP  = sim.TraceMMPP
	TraceCAIDA = sim.TraceCAIDA
)

// DefaultSimConfig returns the paper-scale configuration for one topology
// and utilization.
func DefaultSimConfig(t TopologyName, util float64, seed uint64) SimConfig {
	return sim.DefaultConfig(t, util, seed)
}

// QuickSimConfig returns a scaled-down configuration for smoke runs.
func QuickSimConfig(t TopologyName, util float64, seed uint64) SimConfig {
	return sim.QuickConfig(t, util, seed)
}

// RunSim executes one simulation run.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// RunSimRepeated executes repeated runs and aggregates the headline
// metrics with confidence intervals.
func RunSimRepeated(cfg SimConfig, reps int) (*RepeatedResult, error) {
	return sim.RunRepeated(cfg, reps)
}

// PaperScale returns the full Table III experiment scale (30 reps × 6000
// slots).
func PaperScale() ExperimentScale { return sim.PaperScale() }

// SmokeScale returns a reduced experiment scale for quick regeneration.
func SmokeScale() ExperimentScale { return sim.SmokeScale() }

// ---- Parallel experiment runner ----

type (
	// RunnerOptions configures the parallel experiment runner: worker
	// count, cancellation context, artifact store and progress
	// reporting. The zero value runs on GOMAXPROCS workers.
	RunnerOptions = sim.RunnerOptions
	// SweepCell is one aggregation unit of a sweep: a configuration
	// repeated Reps times and summarized with 95% CIs.
	SweepCell = sim.SweepCell
	// ArtifactStore persists completed sweep cells as versioned JSON
	// for resumable sweeps.
	ArtifactStore = runner.Store
	// ProgressReporter observes a sweep's per-cell progress.
	ProgressReporter = runner.Reporter
)

// OpenArtifactStore opens (creating if needed) an artifact store
// directory.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return runner.OpenStore(dir) }

// NewProgressReporter returns a reporter that prints per-cell progress
// with a running ETA to w.
func NewProgressReporter(w io.Writer) ProgressReporter { return runner.NewTextReporter(w) }

// RunSweep fans the cells' repetitions out across the runner's worker
// pool and returns one aggregated result per cell, in cell order. The
// deterministic metrics are identical to sequential execution for any
// worker count: per-cell seeds are positional (Config.Seed + rep) and
// aggregation order is canonical, not arrival-ordered.
func RunSweep(cells []SweepCell, opts RunnerOptions) ([]*RepeatedResult, error) {
	return sim.RunSweep(cells, opts)
}

// RunSimRepeatedWith is RunSimRepeated under explicit runner options
// (worker count, artifact store, resume, progress).
func RunSimRepeatedWith(cfg SimConfig, reps int, opts RunnerOptions) (*RepeatedResult, error) {
	return sim.RunRepeatedWith(cfg, reps, opts)
}

// ---- Declarative scenarios ----

type (
	// Scenario is a declarative, JSON-serializable experiment spec:
	// named axes over the simulation configuration plus report
	// definitions. Every paper figure is a registered Scenario; user
	// scenarios load from JSON and run through the same machinery.
	Scenario = scenario.Spec
	// ScenarioPatch is a partial simulation configuration; unset fields
	// inherit the base value.
	ScenarioPatch = scenario.Patch
	// ScenarioAxis is one swept dimension of a Scenario's grid.
	ScenarioAxis = scenario.Axis
	// ScenarioAxisValue is one labeled point of an axis.
	ScenarioAxisValue = scenario.AxisValue
	// ScenarioReport declares one output table over the expanded grid.
	ScenarioReport = scenario.Report
	// ScenarioColumn is one value column of a ScenarioReport.
	ScenarioColumn = scenario.Column
)

// RunScenario executes one scenario at the given scale — the scale
// supplies trace lengths, repetitions, the utilization sweep and the
// runner options — and returns its tables, one per report.
func RunScenario(sp *Scenario, s ExperimentScale) ([]*ResultTable, error) {
	return sim.RunScenario(sp, s)
}

// LoadScenario reads and validates a JSON scenario spec.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// SaveScenario writes a scenario spec as indented JSON.
func SaveScenario(w io.Writer, sp *Scenario) error { return scenario.Save(w, sp) }

// RegisterScenario adds a scenario to the registry (duplicate names are
// rejected: scenario names key artifact stores).
func RegisterScenario(sp *Scenario) error { return scenario.Register(sp) }

// LookupScenario returns a deep copy of a registered scenario, so the
// caller may parameterize it freely.
func LookupScenario(name string) (*Scenario, bool) { return scenario.Lookup(name) }

// ScenarioNames lists the registered scenarios (every paper figure and
// table, plus anything added through RegisterScenario), sorted.
func ScenarioNames() []string { return scenario.Names() }

// ---- Online serving (vnesimd) ----

type (
	// Server is the online embedding service: a sharded engine pool
	// behind an HTTP/JSON API. Each shard owns an independent
	// SubstrateState (1/N of every element's capacity), an EmbedOracle
	// and an Engine; a deterministic ingress→shard router serializes all
	// requests of one ingress onto one shard. See cmd/vnesimd for the
	// daemon.
	Server = serve.Server
	// ServerOptions configures a Server: shard count, algorithm, slot
	// duration, the deterministic virtual-clock mode CI leans on, and
	// the nested ServerLimits / ServerReplan / ServerObservability
	// groups (the old flat fields remain as deprecated aliases).
	ServerOptions = serve.Options
	// ServerLimits groups the admission-control knobs: per-shard queue
	// depth (full queues answer 429) and the token-bucket rate limits.
	ServerLimits = serve.Limits
	// ServerReplan configures live adaptive replanning: the rolling
	// request-history depth, the rebuild cadence, and the plan options
	// rebuilds solve under. See the README "Replanning" section.
	ServerReplan = serve.Replan
	// ServerObservability groups the metrics registry and access-log
	// wiring.
	ServerObservability = serve.Observability
	// ServerStats is the GET /v1/stats payload: acceptance rate,
	// revenue, p50/p99 decision latency, replanning state and per-shard
	// utilization.
	ServerStats = serve.StatsResponse
	// ServeEmbedRequest is the POST /v1/embed request body.
	ServeEmbedRequest = serve.EmbedRequest
	// ServeEmbedResponse is the accept/reject decision for one request.
	ServeEmbedResponse = serve.EmbedResponse
	// ServeErrorBody is the payload of the v1 error envelope every
	// non-2xx /v1/* response carries: a stable machine-readable code, a
	// human-readable message, and a retry hint on 429s.
	ServeErrorBody = serve.ErrorBody
	// ServePlanInfo is the GET /v1/plan payload: the published plan
	// generation, its provenance, and per-shard adoption state.
	ServePlanInfo = serve.PlanInfo
	// ServeResizeResult reports what a POST /v1/admin/resize did.
	ServeResizeResult = serve.ResizeResult
)

// Serve error codes (the "code" field of the v1 error envelope).
const (
	ServeErrBadRequest          = serve.ErrCodeBadRequest
	ServeErrNotFound            = serve.ErrCodeNotFound
	ServeErrRateLimited         = serve.ErrCodeRateLimited
	ServeErrQueueFull           = serve.ErrCodeQueueFull
	ServeErrReplanInProgress    = serve.ErrCodeReplanInProgress
	ServeErrReplanDisabled      = serve.ErrCodeReplanDisabled
	ServeErrInsufficientHistory = serve.ErrCodeInsufficientHistory
	ServeErrReplanFailed        = serve.ErrCodeReplanFailed
	ServeErrResizeInProgress    = serve.ErrCodeResizeInProgress
	ServeErrDraining            = serve.ErrCodeDraining
	ServeErrEngine              = serve.ErrCodeEngine
)

// NewServer builds an online embedding server over g and apps. Expose its
// Handler on an http.Server; stop it with Drain (new requests get 503,
// admitted ones still receive their decision).
func NewServer(g *Substrate, apps []*App, opts ServerOptions) (*Server, error) {
	return serve.New(g, apps, opts)
}

// ---- Persistence ----

// SaveTrace writes a trace as versioned JSON.
func SaveTrace(w io.Writer, t *Trace) error { return persist.SaveTrace(w, t) }

// LoadTrace reads a trace written by SaveTrace and validates it.
func LoadTrace(r io.Reader) (*Trace, error) { return persist.LoadTrace(r) }

// SavePlan writes a plan as versioned JSON (embeddings stored
// structurally).
func SavePlan(w io.Writer, p *Plan) error { return persist.SavePlan(w, p) }

// LoadPlan reads a plan written by SavePlan, rebuilding and revalidating
// every embedding against the substrate and application set.
func LoadPlan(r io.Reader, g *Substrate, apps []*App) (*Plan, error) {
	return persist.LoadPlan(r, g, apps)
}

// ---- Time-varying plans (paper §VI future work) ----

// WindowedPlan holds one PLAN-VNE solution per window of a demand cycle;
// the engine swaps plans at window boundaries via Engine.SwapPlan.
type WindowedPlan = plan.WindowedPlan

// BuildWindowedPlan aggregates the history per window position within the
// demand cycle (period slots) and solves one PLAN-VNE instance per window.
func BuildWindowedPlan(g *Substrate, apps []*App, hist *Trace, period, windows int, opts PlanOptions, rng *rand.Rand) (*WindowedPlan, error) {
	return plan.BuildWindowed(g, apps, hist, period, windows, opts, rng)
}
