module github.com/olive-vne/olive

go 1.24
