// Package olive's benchmark harness regenerates every table and figure of
// the paper's evaluation (§IV) and benchmarks the ablations called out in
// DESIGN.md §6. Each benchmark prints the same rows/series the paper
// reports (via b.Log) while testing.B measures the end-to-end runtime of
// the experiment at smoke scale.
//
// Scale: benches default to SmokeScale (~100× fewer requests than
// Table III) so the full suite completes in minutes on a laptop. Set
// OLIVE_BENCH_SCALE=paper to run the full 30-rep × 6000-slot experiments
// (hours). cmd/vnesim exposes the same experiments with finer control.
package olive_test

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/olive-vne/olive/internal/core"
	"github.com/olive-vne/olive/internal/plan"
	"github.com/olive-vne/olive/internal/sim"
	"github.com/olive-vne/olive/internal/topo"
)

func benchScale() sim.Scale {
	if os.Getenv("OLIVE_BENCH_SCALE") == "paper" {
		return sim.PaperScale()
	}
	s := sim.SmokeScale()
	s.Reps = 1 // testing.B supplies repetition; keep each iter lean
	return s
}

func logTable(b *testing.B, t *sim.Table) {
	b.Helper()
	var sb strings.Builder
	t.Fprint(&sb)
	b.Log("\n" + sb.String())
}

// BenchmarkTable2Topologies regenerates Table II (topology inventory).
func BenchmarkTable2Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sim.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig6RejectionRate regenerates Fig. 6: rejection rate vs
// utilization, all four topologies, OLIVE vs QUICKG vs SLOTOFF.
func BenchmarkFig6RejectionRate(b *testing.B) {
	s := benchScale()
	for _, t := range topo.All() {
		b.Run(string(t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rej, _, err := sim.Fig6And7(t, s)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logTable(b, rej)
				}
			}
		})
	}
}

// BenchmarkFig7Cost regenerates Fig. 7: total cost vs utilization (the
// same runs as Fig. 6; reported separately as in the paper).
func BenchmarkFig7Cost(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		_, cost, err := sim.Fig6And7(topo.Iris, s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, cost)
		}
	}
}

// BenchmarkFig8BurstZoom regenerates Fig. 8: per-slot allocated demand
// during bursts, Iris @140%.
func BenchmarkFig8BurstZoom(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig9AppTypes regenerates Fig. 9: rejection by application type
// (including the FULLG reference).
func BenchmarkFig9AppTypes(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig10GPU regenerates Fig. 10: the GPU scenario.
func BenchmarkFig10GPU(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig11Quantiles regenerates Fig. 11: rejection balance index vs
// quantile count — also the quantile ablation of DESIGN.md §6.
func BenchmarkFig11Quantiles(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig11(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig12NodeDetail regenerates Fig. 12: per-application guaranteed
// vs borrowed vs preempted allocations at the Franklin node.
func BenchmarkFig12NodeDetail(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig13PlanDeviation regenerates Fig. 13: plans built for 60%
// and 100% demand running at 140%.
func BenchmarkFig13PlanDeviation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig13(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig14ShiftedPlan regenerates Fig. 14: the plan built from a
// spatially shuffled history.
func BenchmarkFig14ShiftedPlan(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rej, cost, err := sim.Fig14(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, rej)
			logTable(b, cost)
		}
	}
}

// BenchmarkFig15CAIDA regenerates Fig. 15: the CAIDA-like trace.
func BenchmarkFig15CAIDA(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rej, cost, err := sim.Fig15(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, rej)
			logTable(b, cost)
		}
	}
}

// BenchmarkFig16aArrivalRate regenerates Fig. 16a: runtime vs arrival
// rate at fixed utilization.
func BenchmarkFig16aArrivalRate(b *testing.B) {
	s := benchScale()
	lambdas := []float64{2, 4, 8}
	if os.Getenv("OLIVE_BENCH_SCALE") == "paper" {
		lambdas = []float64{5, 10, 20, 40}
	}
	for i := 0; i < b.N; i++ {
		t, err := sim.Fig16a(s, lambdas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig16Runtime regenerates Figs. 16b–e: runtime vs utilization
// per topology.
func BenchmarkFig16Runtime(b *testing.B) {
	s := benchScale()
	for _, t := range topo.All() {
		b.Run(string(t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := sim.Fig16Runtime(t, s)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logTable(b, tbl)
				}
			}
		})
	}
}

// BenchmarkRunnerParallelVsSequential measures the experiment runner's
// fan-out: the same 8-cell sweep (2 utilizations × 4 reps) with 1 worker
// versus GOMAXPROCS workers. On an N-core machine the parallel
// sub-benchmark's ns/op approaches 1/N of the sequential one; the results
// are bit-identical either way (the runner's determinism contract, proven
// by TestRunRepeatedParallelMatchesSequential).
func BenchmarkRunnerParallelVsSequential(b *testing.B) {
	sweepCells := func() []sim.SweepCell {
		cells := make([]sim.SweepCell, 0, 2)
		for _, u := range []float64{0.8, 1.2} {
			cfg := sim.QuickConfig(topo.CittaStudi, u, 1)
			cfg.HistSlots = 100
			cfg.OnlineSlots = 40
			cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE, core.AlgoQuickG}
			cells = append(cells, sim.SweepCell{Config: cfg, Reps: 4})
		}
		return cells
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	} else {
		workerCounts = append(workerCounts, 2) // single-core: measures overhead only
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSweep(sweepCells(), sim.RunnerOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

func ablationConfig(seed uint64) sim.Config {
	cfg := sim.QuickConfig(topo.Iris, 1.4, seed)
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	return cfg
}

// BenchmarkAblationColumnGen compares the plan LP solved with column
// generation against seed (collocated-only) columns.
func BenchmarkAblationColumnGen(b *testing.B) {
	for _, pricing := range []int{0, 8} {
		name := "seed-only"
		if pricing > 0 {
			name = "priced"
		}
		b.Run(name, func(b *testing.B) {
			var lastRej float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(uint64(i + 1))
				cfg.PlanOptions.MaxPricingRounds = pricing
				rr, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastRej = rr.Results[core.AlgoOLIVE].RejectionRate
			}
			b.ReportMetric(lastRej, "rejection")
		})
	}
}

// BenchmarkAblationPreemption measures OLIVE with PREEMPT disabled.
func BenchmarkAblationPreemption(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "preempt-on"
		if disable {
			name = "preempt-off"
		}
		b.Run(name, func(b *testing.B) {
			var lastRej float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(uint64(i + 1))
				cfg.EngineOptions.DisablePreemption = disable
				rr, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastRej = rr.Results[core.AlgoOLIVE].RejectionRate
			}
			b.ReportMetric(lastRej, "rejection")
		})
	}
}

// BenchmarkAblationBorrowing measures OLIVE with the partial-fit
// (borrowing) mechanism disabled.
func BenchmarkAblationBorrowing(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "borrow-on"
		if disable {
			name = "borrow-off"
		}
		b.Run(name, func(b *testing.B) {
			var lastRej float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(uint64(i + 1))
				cfg.EngineOptions.DisableBorrowing = disable
				rr, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastRej = rr.Results[core.AlgoOLIVE].RejectionRate
			}
			b.ReportMetric(lastRej, "rejection")
		})
	}
}

// BenchmarkAblationPercentile compares P̂80 aggregation against full-peak
// P̂100 planning (the paper argues P80 avoids over-provisioning).
func BenchmarkAblationPercentile(b *testing.B) {
	for _, alpha := range []float64{0.8, 1.0} {
		name := "P80"
		if alpha == 1.0 {
			name = "P100"
		}
		b.Run(name, func(b *testing.B) {
			var lastRej float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(uint64(i + 1))
				cfg.PlanOptions.Alpha = alpha
				rr, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastRej = rr.Results[core.AlgoOLIVE].RejectionRate
			}
			b.ReportMetric(lastRej, "rejection")
		})
	}
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkPlanBuild measures PLAN-VNE construction alone (§IV-B notes
// the planning phase is solved once and scales independently of the
// request rate).
func BenchmarkPlanBuild(b *testing.B) {
	cfg := sim.QuickConfig(topo.Iris, 1.0, 1)
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	rr, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	classes := make([]plan.Class, len(rr.Plan.Classes))
	for i, cp := range rr.Plan.Classes {
		classes[i] = cp.Class
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Build(rr.Substrate, rr.Apps, classes, plan.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlinePerRequest measures OLIVE's per-request processing rate —
// the paper's scalability headline (≥1000 requests/s per slot).
func BenchmarkOnlinePerRequest(b *testing.B) {
	cfg := sim.QuickConfig(topo.Random100, 1.0, 1)
	cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
	rr, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	requests := 0
	for _, rec := range rr.Results[core.AlgoOLIVE].Log {
		_ = rec
		requests++
	}
	if requests == 0 {
		b.Fatal("no requests processed")
	}
	perReq := rr.Results[core.AlgoOLIVE].Runtime.Seconds() / float64(requests)
	b.ReportMetric(1/perReq, "req/s")
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 2)
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTimeVaryingPlan evaluates the §VI future-work
// extension implemented here: per-window plans on a diurnal CAIDA-like
// trace, against a single flat plan.
func BenchmarkExtensionTimeVaryingPlan(b *testing.B) {
	for _, windows := range []int{1, 4} {
		name := "flat"
		if windows > 1 {
			name = "windowed-4"
		}
		b.Run(name, func(b *testing.B) {
			var lastRej float64
			for i := 0; i < b.N; i++ {
				cfg := sim.QuickConfig(topo.Iris, 1.2, uint64(i+1))
				cfg.Trace = sim.TraceCAIDA
				cfg.DiurnalPeriod = 60
				if windows > 1 {
					cfg.PlanWindows = windows
				}
				cfg.Algorithms = []core.Algorithm{core.AlgoOLIVE}
				rr, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastRej = rr.Results[core.AlgoOLIVE].RejectionRate
			}
			b.ReportMetric(lastRej, "rejection")
		})
	}
}
